#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <thread>

#include "core/check.hpp"
#include "core/json.hpp"
#include "core/thread_pool.hpp"
#include "flow/dataset_flow.hpp"
#include "gen/circuit_generator.hpp"
#include "model/features.hpp"
#include "model/gnn.hpp"
#include "model/inference.hpp"
#include "nn/conv.hpp"
#include "nn/kernels.hpp"
#include "nn/workspace.hpp"
#include "obs/flight.hpp"
#include "opt/optimizer.hpp"
#include "part/partition.hpp"
#include "place/placer.hpp"
#include "serve/serve.hpp"
#include "sta/multicorner.hpp"
#include "sta/session.hpp"
#include "sta/sta.hpp"

namespace rtp::bench {

Fixture::Fixture(double scale) : library(nl::CellLibrary::standard()) {
  const auto specs = gen::paper_benchmarks();
  const gen::BenchmarkSpec& spec = gen::benchmark_by_name(specs, "rocket");
  gen::CircuitGenerator generator(library);
  gen::GeneratedCircuit circuit = generator.generate(spec, scale);
  netlist = std::move(circuit.netlist);
  place::PlacerConfig config;
  config.utilization = spec.utilization;
  config.num_macros = spec.num_macros;
  config.seed = spec.seed;
  placement = place::Placer(config).place(netlist);
}

Fixture& fixture(double scale) {
  static Fixture small(0.01);
  static Fixture medium(0.04);
  return scale < 0.02 ? small : medium;
}

double time_ns_per_op(const std::function<void()>& fn, int min_reps,
                      double min_seconds) {
  fn();
  int reps = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } while (reps < min_reps || elapsed < min_seconds);
  return elapsed * 1e9 / reps;
}

const Metric* BenchDoc::find(const std::string& name) const {
  for (const Metric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string bench_json(const BenchDoc& doc) {
  std::string out = "{\n  \"schema\": \"rtp-bench-v2\",\n  \"suite\": \"" +
                    doc.suite + "\",\n  \"smoke\": " +
                    (doc.smoke ? "true" : "false") + ",\n  \"metrics\": {\n";
  char line[256];
  for (std::size_t i = 0; i < doc.metrics.size(); ++i) {
    const Metric& m = doc.metrics[i];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": {\"value\": %.6g, \"unit\": \"%s\", "
                  "\"better\": \"%s\", \"tolerance\": %.6g}%s\n",
                  m.name.c_str(), m.value, m.unit.c_str(),
                  m.higher_better ? "higher" : "lower", m.tolerance,
                  i + 1 < doc.metrics.size() ? "," : "");
    out += line;
  }
  out += "  }\n}\n";
  return out;
}

bool write_bench_json(const BenchDoc& doc, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << bench_json(doc);
  return static_cast<bool>(out);
}

namespace {

struct AbResult {
  std::string name;
  std::string dims;       ///< human-readable problem size
  double flops = 0.0;     ///< per op; 0 when not meaningful
  double naive_ns = 0.0;
  double blocked_ns = 0.0;

  double speedup() const { return naive_ns / blocked_ns; }
  double gflops(double ns) const { return ns > 0.0 ? flops / ns : 0.0; }
};

/// Times one gemm op blocked-vs-naive at (m, n, k), single thread.
AbResult ab_gemm(const char* name, nn::kern::Op op_a, nn::kern::Op op_b, int m,
                 int n, int k, int min_reps, double min_seconds) {
  Rng rng(11);
  const int a_rows = op_a == nn::kern::Op::kNone ? m : k;
  const int a_cols = op_a == nn::kern::Op::kNone ? k : m;
  const int b_rows = op_b == nn::kern::Op::kNone ? k : n;
  const int b_cols = op_b == nn::kern::Op::kNone ? n : k;
  const nn::Tensor a = nn::Tensor::uniform({a_rows, a_cols}, 1.0f, rng);
  const nn::Tensor b = nn::Tensor::uniform({b_rows, b_cols}, 1.0f, rng);
  nn::Tensor c({m, n});
  AbResult r;
  r.name = name;
  r.dims = std::to_string(m) + "x" + std::to_string(n) + "x" + std::to_string(k);
  r.flops = 2.0 * m * n * k;
  r.naive_ns = time_ns_per_op(
      [&] { nn::kern::gemm_naive(op_a, op_b, m, n, k, a.data(), b.data(), c.data()); },
      min_reps, min_seconds);
  r.blocked_ns = time_ns_per_op(
      [&] { nn::kern::gemm_blocked(op_a, op_b, m, n, k, a.data(), b.data(), c.data()); },
      min_reps, min_seconds);
  keep(c.data());
  return r;
}

/// Gated ratio (both arms measured back-to-back on this machine): a drop
/// below 1 - 0.75 = 25% of the committed baseline fails bench_regress.
constexpr double kRatioTolerance = 0.75;

void push_ab_metrics(BenchDoc& doc, const AbResult& r) {
  doc.metrics.push_back(
      {r.name + ".speedup", r.speedup(), "ratio", true, kRatioTolerance});
  doc.metrics.push_back({r.name + ".naive_ns", r.naive_ns, "ns", false, -1.0});
  doc.metrics.push_back(
      {r.name + ".blocked_ns", r.blocked_ns, "ns", false, -1.0});
  doc.metrics.push_back({r.name + ".blocked_gflops", r.gflops(r.blocked_ns),
                         "gflops", true, -1.0});
}

}  // namespace

BenchDoc run_nn_suite(bool smoke) {
  core::set_num_threads(1);
  const int reps = smoke ? 3 : 10;
  const double secs = smoke ? 0.05 : 0.5;

  BenchDoc doc;
  doc.suite = "nn";
  doc.smoke = smoke;

  std::vector<AbResult> cases;
  cases.push_back(ab_gemm("matmul_256", nn::kern::Op::kNone, nn::kern::Op::kNone,
                          256, 256, 256, reps, secs));
  cases.push_back(ab_gemm("matmul_bt_256", nn::kern::Op::kNone, nn::kern::Op::kTrans,
                          256, 256, 256, reps, secs));
  cases.push_back(ab_gemm("matmul_at_256", nn::kern::Op::kTrans, nn::kern::Op::kNone,
                          256, 256, 256, reps, secs));

  // Conv A/B: the full im2col pipeline with gemm() dispatched naive vs
  // blocked via the same override the RTP_NAIVE_KERNELS env uses.
  {
    Rng rng(5);
    nn::Conv2d conv(8, 16, 3, 1, rng);
    const nn::Tensor x = nn::Tensor::uniform({8, 128, 128}, 1.0f, rng);
    AbResult fwd;
    fwd.name = "conv_forward";
    fwd.dims = "8x128x128 -> 16x128x128, k=3";
    fwd.flops = 2.0 * 16 * (8 * 3 * 3) * (128 * 128);
    nn::Tensor y = conv.forward(x);
    AbResult bwd;
    bwd.name = "conv_backward";
    bwd.dims = fwd.dims;
    bwd.flops = 2.0 * fwd.flops;  // dW GEMM + G_col GEMM, same shape each
    nn::kern::set_use_naive_kernels(true);
    fwd.naive_ns =
        time_ns_per_op([&] { keep(conv.forward(x).numel()); }, reps, secs);
    bwd.naive_ns =
        time_ns_per_op([&] { keep(conv.backward(y).numel()); }, reps, secs);
    nn::kern::set_use_naive_kernels(false);
    fwd.blocked_ns =
        time_ns_per_op([&] { keep(conv.forward(x).numel()); }, reps, secs);
    bwd.blocked_ns =
        time_ns_per_op([&] { keep(conv.backward(y).numel()); }, reps, secs);
    nn::kern::reset_naive_kernels_override();
    cases.push_back(fwd);
    cases.push_back(bwd);
  }

  for (const AbResult& r : cases) {
    push_ab_metrics(doc, r);
    std::cerr << r.name << " (" << r.dims << "): naive " << r.gflops(r.naive_ns)
              << " GF/s, blocked " << r.gflops(r.blocked_ns) << " GF/s, speedup "
              << r.speedup() << "x\n";
  }

  // ---- Fused-epilogue A/Bs: the new fused path (bias/ReLU in the GEMM
  // store loop, kern::FusionPlan) vs the pre-fusion sequence (separate bias
  // sweep, then a copying ReLU pass). The unfused arm honours RTP_NO_FUSION
  // semantics via set_fusion_enabled(false); the fused arm drops the
  // override, so under RTP_NO_FUSION=1 both arms run unfused and the gate in
  // run_nn_harness skips its floor. nn.fused_identical is the bitwise
  // fused==unfused invariant (gated at tolerance 0).
  bool fused_identical = true;
  {
    Rng rng(7);
    nn::Conv2d conv(8, 16, 3, 1, rng);
    const nn::Tensor x = nn::Tensor::uniform({8, 128, 128}, 1.0f, rng);
    nn::ReluMask mask;
    nn::kern::set_fusion_enabled(false);
    const nn::Tensor ref = nn::ReLU::forward(conv.forward(x), &mask);
    const nn::ReluMask mask_ref = mask;
    const double unfused_ns = time_ns_per_op(
        [&] { keep(nn::ReLU::forward(conv.forward(x), &mask).numel()); }, reps,
        secs);
    nn::kern::reset_fusion_override();
    const nn::Tensor got = conv.forward(x, &mask);
    fused_identical = fused_identical && got.same_shape(ref) &&
                      std::memcmp(got.data(), ref.data(),
                                  got.numel() * sizeof(float)) == 0 &&
                      mask == mask_ref;
    const double fused_ns = time_ns_per_op(
        [&] { keep(conv.forward(x, &mask).numel()); }, reps, secs);
    doc.metrics.push_back({"nn.fused_conv_forward.speedup",
                           unfused_ns / fused_ns, "ratio", true,
                           kRatioTolerance});
    doc.metrics.push_back(
        {"nn.fused_conv_forward.fused_ns", fused_ns, "ns", false, -1.0});
    doc.metrics.push_back(
        {"nn.fused_conv_forward.unfused_ns", unfused_ns, "ns", false, -1.0});
    std::cerr << "nn.fused_conv_forward (8x128x128, k=3, +bias+relu): unfused "
              << unfused_ns << " ns, fused " << fused_ns << " ns, speedup "
              << unfused_ns / fused_ns << "x\n";
  }
  {
    Rng rng(9);
    nn::Linear lin(256, 256, rng);
    const nn::Tensor x = nn::Tensor::uniform({512, 256}, 1.0f, rng);
    nn::kern::set_fusion_enabled(false);
    const nn::Tensor ref = nn::ReLU::apply(lin.apply(x));
    const double unfused_ns = time_ns_per_op(
        [&] { keep(nn::ReLU::apply(lin.apply(x)).numel()); }, reps, secs);
    nn::kern::reset_fusion_override();
    const nn::Tensor got = lin.apply(x, /*relu=*/true);
    fused_identical = fused_identical && got.same_shape(ref) &&
                      std::memcmp(got.data(), ref.data(),
                                  got.numel() * sizeof(float)) == 0;
    const double fused_ns = time_ns_per_op(
        [&] { keep(lin.apply(x, /*relu=*/true).numel()); }, reps, secs);
    doc.metrics.push_back({"nn.fused_linear_relu.speedup",
                           unfused_ns / fused_ns, "ratio", true,
                           kRatioTolerance});
    doc.metrics.push_back(
        {"nn.fused_linear_relu.fused_ns", fused_ns, "ns", false, -1.0});
    doc.metrics.push_back(
        {"nn.fused_linear_relu.unfused_ns", unfused_ns, "ns", false, -1.0});
    std::cerr << "nn.fused_linear_relu (512x256x256, +bias+relu): unfused "
              << unfused_ns << " ns, fused " << fused_ns << " ns, speedup "
              << unfused_ns / fused_ns << "x\n";
  }
  doc.metrics.push_back(
      {"nn.fused_identical", fused_identical ? 1.0 : 0.0, "bool", true, 0.0});

  // ---- Partitioned GNN streaming A/B: whole-graph infer vs infer_streamed
  // over an explicit ~8-partition plan on the medium fixture, single thread.
  // Three gates ride on it: bitwise identity (tolerance 0), the same-run
  // wall-time ratio, and the pooled-bytes-peak ratio — the streaming scopes
  // must keep the arena's high-water mark well below the whole-graph sweep's
  // (that bound is the point of partitioning; a full A/B on the x10 profile
  // lives in bench_partition).
  {
    const Fixture& f = fixture(0.04);
    const tg::TimingGraph graph(f.netlist);
    const model::NodeFeatures feat =
        model::extract_node_features(graph, f.placement);
    model::ModelConfig mc;
    Rng rng(13);
    model::EndpointGNN gnn(mc, rng);
    std::size_t live = 0;
    for (const auto& bucket : graph.nodes_by_level()) live += bucket.size();
    const int budget = std::max(1, static_cast<int>(live) / 8);
    const part::Plan plan = part::Plan::build(graph, budget);
    nn::Workspace& ws = nn::Workspace::instance();

    ws.clear();
    ws.reset_pooled_bytes_peak();
    const nn::Tensor whole = gnn.infer(part::GraphView::full(graph), feat);
    const double whole_peak = static_cast<double>(ws.pooled_bytes_peak());
    const double whole_ns = time_ns_per_op(
        [&] { keep(gnn.infer(part::GraphView::full(graph), feat).numel()); },
        reps, secs);

    ws.clear();
    ws.reset_pooled_bytes_peak();
    const nn::Tensor streamed = gnn.infer_streamed(plan, feat);
    const double streamed_peak = static_cast<double>(ws.pooled_bytes_peak());
    const double streamed_ns = time_ns_per_op(
        [&] { keep(gnn.infer_streamed(plan, feat).numel()); }, reps, secs);
    ws.clear();

    const bool part_identical =
        whole.same_shape(streamed) &&
        std::memcmp(whole.data(), streamed.data(),
                    whole.numel() * sizeof(float)) == 0;
    const double peak_ratio =
        streamed_peak > 0.0 ? whole_peak / streamed_peak : 0.0;
    doc.metrics.push_back({"gnn.partition.identical",
                           part_identical ? 1.0 : 0.0, "bool", true, 0.0});
    doc.metrics.push_back({"gnn.partition.speedup", whole_ns / streamed_ns,
                           "ratio", true, kRatioTolerance});
    doc.metrics.push_back({"gnn.partition.pooled_peak_ratio", peak_ratio,
                           "ratio", true, kRatioTolerance});
    doc.metrics.push_back({"gnn.partition.partitions",
                           static_cast<double>(plan.num_partitions()), "count",
                           false, -1.0});
    doc.metrics.push_back(
        {"gnn.partition.whole_ns", whole_ns, "ns", false, -1.0});
    doc.metrics.push_back(
        {"gnn.partition.streamed_ns", streamed_ns, "ns", false, -1.0});
    doc.metrics.push_back(
        {"gnn.partition.whole_peak_bytes", whole_peak, "bytes", false, -1.0});
    doc.metrics.push_back({"gnn.partition.streamed_peak_bytes", streamed_peak,
                           "bytes", false, -1.0});
    std::cerr << "gnn.partition (rocket@0.04, " << plan.num_partitions()
              << " partitions): whole " << whole_ns << " ns / peak "
              << whole_peak / (1024.0 * 1024.0) << " MiB, streamed "
              << streamed_ns << " ns / peak "
              << streamed_peak / (1024.0 * 1024.0) << " MiB, peak ratio "
              << peak_ratio << "x, identical="
              << (part_identical ? "yes" : "NO") << "\n";
  }

  // Thread sweep over the blocked paths (ns only; speedup depends on cores).
  for (int t : {1, 2, 4}) {
    core::set_num_threads(t);
    Rng rng(11);
    const nn::Tensor a = nn::Tensor::uniform({256, 256}, 1.0f, rng);
    const nn::Tensor b = nn::Tensor::uniform({256, 256}, 1.0f, rng);
    doc.metrics.push_back(
        {"matmul_256.threads" + std::to_string(t) + ".ns",
         time_ns_per_op([&] { keep(nn::matmul(a, b).numel()); }, reps, secs),
         "ns", false, -1.0});
    nn::Conv2d conv(8, 16, 3, 1, rng);
    const nn::Tensor x = nn::Tensor::uniform({8, 128, 128}, 1.0f, rng);
    doc.metrics.push_back(
        {"conv_forward.threads" + std::to_string(t) + ".ns",
         time_ns_per_op([&] { keep(conv.forward(x).numel()); }, reps, secs),
         "ns", false, -1.0});
  }
  core::set_num_threads(0);
  return doc;
}

int run_nn_harness(const std::string& path, bool smoke) {
  const BenchDoc doc = run_nn_suite(smoke);
  if (!write_bench_json(doc, path)) {
    std::cerr << "bench: cannot write " << path << "\n";
    return 2;
  }
  std::cerr << "wrote " << path << "\n";
  const Metric* m = doc.find("matmul_256.speedup");
  if (m != nullptr && m->value < 1.0) {
    std::cerr << "REGRESSION: blocked matmul slower than naive reference\n";
    return 1;
  }
  const Metric* ident = doc.find("nn.fused_identical");
  if (ident != nullptr && ident->value != 1.0) {
    std::cerr << "REGRESSION: fused epilogue output diverges from the "
                 "unfused sweep sequence\n";
    return 1;
  }
  // Fused floor: the fused path must not be slower than the separate-sweep
  // sequence it replaces. Skipped under RTP_NO_FUSION=1 (both arms then run
  // the same unfused code and the ratio is noise around 1).
  if (nn::kern::fusion_enabled()) {
    for (const char* name :
         {"nn.fused_conv_forward.speedup", "nn.fused_linear_relu.speedup"}) {
      const Metric* f = doc.find(name);
      if (f != nullptr && f->value < 1.0) {
        std::cerr << "REGRESSION: " << name
                  << " < 1 — fused epilogue slower than separate sweeps\n";
        return 1;
      }
    }
  } else {
    std::cerr << "fusion disabled (RTP_NO_FUSION): fused-vs-unfused floor "
                 "skipped\n";
  }
  const Metric* part_ident = doc.find("gnn.partition.identical");
  if (part_ident != nullptr && part_ident->value != 1.0) {
    std::cerr << "REGRESSION: streamed partitioned GNN inference diverges "
                 "from the whole-graph sweep\n";
    return 1;
  }
  // Memory floor: streaming scopes must not let the arena peak above the
  // whole-graph sweep's (a partition's pooled working set is a subset).
  const Metric* peak = doc.find("gnn.partition.pooled_peak_ratio");
  if (peak != nullptr && peak->value < 1.0) {
    std::cerr << "REGRESSION: partitioned streaming pooled more workspace "
                 "than the whole-graph sweep\n";
    return 1;
  }
  return 0;
}

namespace {

/// One timed optimizer run on copies of the fixture design. The optimizer's
/// per-chunk re-times go through its TimingSession; with RTP_FULL_STA=1 every
/// one of them is a full sweep instead — same trajectory, different engine.
opt::OptimizerReport run_opt_arm(const Fixture& f, double clock_period,
                                 bool force_full, double& seconds) {
  nl::Netlist netlist = f.netlist;
  layout::Placement placement = f.placement;
  opt::OptimizerConfig config;
  config.sta.delay.tech.clock_period = clock_period;
  config.seed = 17;
  if (force_full) {
    setenv("RTP_FULL_STA", "1", 1);
  } else {
    unsetenv("RTP_FULL_STA");
  }
  opt::TimingOptimizer optimizer(config);
  const auto t0 = std::chrono::steady_clock::now();
  opt::OptimizerReport report = optimizer.optimize(netlist, placement);
  seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  unsetenv("RTP_FULL_STA");
  return report;
}

/// Bitwise signature of one corner's timing answer after one round: FNV-1a
/// over the endpoint arrays plus wns/tns. Equal signatures every round for
/// every corner is how the A/B asserts the arms computed the same bits.
std::uint64_t corner_signature(const sta::StaResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const double* p, std::size_t n) {
    const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n * sizeof(double); ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  mix(r.endpoint_arrival.data(), r.endpoint_arrival.size());
  mix(r.endpoint_slack.data(), r.endpoint_slack.size());
  mix(&r.wns, 1);
  mix(&r.tns, 1);
  return h;
}

struct MultiCornerAB {
  double concurrent_s = 1e30;
  double serial_s = 1e30;
  bool identical = true;
  std::size_t corners = 0;
};

/// Multi-corner A/B: one MultiCornerSession fanning the registry corners vs
/// the same number of independent single-corner sessions updated back to
/// back. Each round resizes one cell, perturbs one congestion bin, and
/// re-times — a rebase-heavy serving loop, because the multicorner win at any
/// thread count is the corner-invariant congestion diff computed once instead
/// of once per corner.
MultiCornerAB run_multicorner_ab(const Fixture& f, double clock_period,
                                 bool smoke) {
  MultiCornerAB ab;
  const std::vector<sta::Corner> corners = sta::registry_corners();
  ab.corners = corners.size();
  const layout::GridMap base =
      flow::make_congestion_map(f.netlist, f.placement, 64);

  sta::StaConfig config;
  config.delay.tech.clock_period = clock_period;
  config.delay.wire_model = sta::WireModel::kSignOff;
  config.delay.congestion = &base;

  // Deterministic edit schedule: the first few combinational cells with an
  // upsize, toggled away and back so the design never drifts from the seed.
  std::vector<std::pair<nl::CellId, nl::LibCellId>> toggles;
  for (int c = 0;
       c < f.netlist.num_cell_slots() && toggles.size() < 8; ++c) {
    const nl::CellId id = static_cast<nl::CellId>(c);
    if (!f.netlist.cell_alive(id) || f.netlist.lib_cell(id).is_sequential()) {
      continue;
    }
    const nl::LibCellId up = f.library.upsize(f.netlist.cell(id).lib);
    if (up != nl::kInvalidId) toggles.emplace_back(id, up);
  }
  RTP_CHECK(!toggles.empty());

  const int rounds = smoke ? 16 : 32;
  auto edit_round = [&](nl::Netlist& netlist, int round,
                        sta::EditBatch& batch) {
    const auto& [cell, up] = toggles[static_cast<std::size_t>(round) %
                                     toggles.size()];
    const nl::LibCellId cur = netlist.cell(cell).lib;
    const nl::LibCellId target =
        cur == up ? f.netlist.cell(cell).lib : up;
    netlist.resize_cell(cell, target);
    batch.resized_cells.push_back(cell);
  };
  auto perturb_round = [&](layout::GridMap& map, int round) {
    map.at(round % map.rows(), (7 * round) % map.cols()) *= 1.02f;
  };

  const int reps = smoke ? 2 : 3;
  std::vector<std::uint64_t> concurrent_sig, serial_sig;
  for (int rep = 0; rep < reps; ++rep) {
    {
      concurrent_sig.clear();
      nl::Netlist netlist = f.netlist;
      layout::GridMap map = base;
      sta::MultiCornerSession session(netlist, f.placement, config, corners);
      session.update();
      const auto t0 = std::chrono::steady_clock::now();
      for (int round = 0; round < rounds; ++round) {
        sta::EditBatch batch;
        edit_round(netlist, round, batch);
        session.apply(batch);
        perturb_round(map, round);
        session.rebase_congestion(map);
        session.update();
        for (std::size_t c = 0; c < corners.size(); ++c) {
          concurrent_sig.push_back(corner_signature(session.corner_results(c)));
        }
      }
      ab.concurrent_s = std::min(
          ab.concurrent_s,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    {
      serial_sig.clear();
      nl::Netlist netlist = f.netlist;
      layout::GridMap map = base;
      std::vector<std::unique_ptr<sta::TimingSession>> sessions;
      for (const sta::Corner& corner : corners) {
        sta::StaConfig per = config;
        per.corner = corner;
        sessions.push_back(std::make_unique<sta::TimingSession>(
            netlist, f.placement, per));
        sessions.back()->update();
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (int round = 0; round < rounds; ++round) {
        sta::EditBatch batch;
        edit_round(netlist, round, batch);
        perturb_round(map, round);
        for (auto& session : sessions) {
          session->apply(batch);
          session->rebase_congestion(map);
          session->update();
        }
        for (auto& session : sessions) {
          serial_sig.push_back(corner_signature(session->results()));
        }
      }
      ab.serial_s = std::min(
          ab.serial_s,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    ab.identical = ab.identical && concurrent_sig == serial_sig;
  }
  return ab;
}

}  // namespace

BenchDoc run_sta_suite(bool smoke) {
  // TABLE-I-scale design: rocket at the medium fixture scale.
  const Fixture& f = fixture(0.04);

  // Replicate the flow's constrain stage so the optimizer sees real
  // violations (a fraction of the unconstrained sign-off WNS path).
  double clock_period = 0.0;
  {
    const layout::GridMap congestion =
        flow::make_congestion_map(f.netlist, f.placement, 64);
    sta::StaConfig probe;
    probe.delay.tech.clock_period = 1e9;
    probe.delay.wire_model = sta::WireModel::kSignOff;
    probe.delay.congestion = &congestion;
    sta::TimingSession session(f.netlist, f.placement, probe);
    const sta::StaResult& r = session.update();
    double max_arrival = 0.0;
    for (double a : r.endpoint_arrival) max_arrival = std::max(max_arrival, a);
    // Tighter than the flow's default factor: the A/B should stress the
    // optimizer's re-timing loop with a deep violation set, not converge in
    // two passes.
    clock_period = std::max(50.0, 0.45 * max_arrival);
  }

  const int reps = smoke ? 1 : 3;
  double inc_s = 1e30, full_s = 1e30;
  opt::OptimizerReport inc_report, full_report;
  for (int rep = 0; rep < reps; ++rep) {
    double s = 0.0;
    inc_report = run_opt_arm(f, clock_period, /*force_full=*/false, s);
    inc_s = std::min(inc_s, s);
    full_report = run_opt_arm(f, clock_period, /*force_full=*/true, s);
    full_s = std::min(full_s, s);
  }

  // Both arms must walk the same trajectory to the bit-identical answer —
  // otherwise the A/B compares different work, not different engines.
  const bool identical = inc_report.wns_after == full_report.wns_after &&
                         inc_report.tns_after == full_report.tns_after &&
                         inc_report.moves_sizing == full_report.moves_sizing &&
                         inc_report.moves_buffer == full_report.moves_buffer &&
                         inc_report.moves_restructure == full_report.moves_restructure &&
                         inc_report.passes_run == full_report.passes_run;
  const double speedup = inc_s > 0.0 ? full_s / inc_s : 0.0;

  const MultiCornerAB mc = run_multicorner_ab(f, clock_period, smoke);
  const double mc_speedup =
      mc.concurrent_s > 0.0 ? mc.serial_s / mc.concurrent_s : 0.0;

  // ---- Partitioned full-sweep A/B: the same one-shot STA through an
  // explicit ~8-partition plan vs the whole-graph sweep. Gated on bitwise
  // identity and the same-run wall-time ratio; partition shape lands as info.
  bool part_identical = false;
  double part_speedup = 0.0, whole_sweep_ns = 0.0, part_sweep_ns = 0.0;
  std::size_t part_count = 0, part_cuts = 0;
  {
    const tg::TimingGraph graph(f.netlist);
    sta::StaConfig config;
    config.delay.tech.clock_period = clock_period;
    std::size_t live = 0;
    for (const auto& bucket : graph.nodes_by_level()) live += bucket.size();
    const int budget = std::max(1, static_cast<int>(live) / 8);
    const part::Plan plan = part::Plan::build(graph, budget);
    part_count = plan.num_partitions();
    part_cuts = plan.total_cut_pins();

    const sta::StaResult whole =
        sta::run_sta(graph, f.placement, config, nullptr);
    const sta::StaResult parted =
        sta::run_sta(graph, f.placement, config, &plan);
    part_identical =
        whole.arrival.size() == parted.arrival.size() &&
        std::memcmp(whole.arrival.data(), parted.arrival.data(),
                    whole.arrival.size() * sizeof(double)) == 0 &&
        std::memcmp(whole.slack.data(), parted.slack.data(),
                    whole.slack.size() * sizeof(double)) == 0 &&
        whole.wns == parted.wns && whole.tns == parted.tns;

    const int sweep_reps = smoke ? 2 : 5;
    const double sweep_secs = smoke ? 0.05 : 0.5;
    whole_sweep_ns = time_ns_per_op(
        [&] { keep(sta::run_sta(graph, f.placement, config, nullptr).wns); },
        sweep_reps, sweep_secs);
    part_sweep_ns = time_ns_per_op(
        [&] { keep(sta::run_sta(graph, f.placement, config, &plan).wns); },
        sweep_reps, sweep_secs);
    part_speedup = part_sweep_ns > 0.0 ? whole_sweep_ns / part_sweep_ns : 0.0;
  }

  BenchDoc doc;
  doc.suite = "sta";
  doc.smoke = smoke;
  doc.metrics.push_back(
      {"sta.speedup", speedup, "ratio", true, kRatioTolerance});
  doc.metrics.push_back(
      {"sta.identical_results", identical ? 1.0 : 0.0, "bool", true, 0.0});
  doc.metrics.push_back({"sta.incremental_s", inc_s, "s", false, -1.0});
  doc.metrics.push_back({"sta.full_s", full_s, "s", false, -1.0});
  doc.metrics.push_back({"sta.passes_run",
                         static_cast<double>(inc_report.passes_run), "count",
                         true, -1.0});
  doc.metrics.push_back(
      {"sta.clock_period_ps", clock_period, "ps", false, -1.0});
  doc.metrics.push_back({"sta.wns_after", inc_report.wns_after, "ps", true, -1.0});
  doc.metrics.push_back({"sta.tns_after", inc_report.tns_after, "ps", true, -1.0});
  doc.metrics.push_back(
      {"sta.multicorner.speedup", mc_speedup, "ratio", true, kRatioTolerance});
  doc.metrics.push_back({"sta.multicorner.identical", mc.identical ? 1.0 : 0.0,
                         "bool", true, 0.0});
  doc.metrics.push_back(
      {"sta.multicorner.concurrent_s", mc.concurrent_s, "s", false, -1.0});
  doc.metrics.push_back(
      {"sta.multicorner.serial_s", mc.serial_s, "s", false, -1.0});
  doc.metrics.push_back({"sta.multicorner.corners",
                         static_cast<double>(mc.corners), "count", false,
                         -1.0});
  doc.metrics.push_back({"sta.partition.identical",
                         part_identical ? 1.0 : 0.0, "bool", true, 0.0});
  doc.metrics.push_back(
      {"sta.partition.speedup", part_speedup, "ratio", true, kRatioTolerance});
  doc.metrics.push_back({"sta.partition.partitions",
                         static_cast<double>(part_count), "count", false, -1.0});
  doc.metrics.push_back({"sta.partition.cut_pins",
                         static_cast<double>(part_cuts), "count", false, -1.0});
  doc.metrics.push_back(
      {"sta.partition.whole_ns", whole_sweep_ns, "ns", false, -1.0});
  doc.metrics.push_back(
      {"sta.partition.partitioned_ns", part_sweep_ns, "ns", false, -1.0});
  std::cerr << "sta.partition (" << part_count << " partitions, " << part_cuts
            << " cut pins): whole " << whole_sweep_ns << " ns, partitioned "
            << part_sweep_ns << " ns, speedup " << part_speedup
            << "x, identical=" << (part_identical ? "yes" : "NO") << "\n";

  std::cerr << "sta A/B on rocket@0.04: incremental " << inc_s << "s, full "
            << full_s << "s, speedup " << speedup << "x, identical="
            << (identical ? "yes" : "NO") << "\n";
  std::cerr << "multicorner A/B (" << mc.corners << " corners): concurrent "
            << mc.concurrent_s << "s, serial " << mc.serial_s << "s, speedup "
            << mc_speedup << "x, identical=" << (mc.identical ? "yes" : "NO")
            << "\n";
  return doc;
}

int run_sta_harness(const std::string& path, bool smoke) {
  const BenchDoc doc = run_sta_suite(smoke);
  if (!write_bench_json(doc, path)) {
    std::cerr << "bench: cannot write " << path << "\n";
    return 2;
  }
  std::cerr << "wrote " << path << "\n";
  if (doc.find("sta.identical_results")->value != 1.0) {
    std::cerr << "REGRESSION: incremental and full STA arms diverged\n";
    return 1;
  }
  if (doc.find("sta.speedup")->value <= 1.0) {
    std::cerr << "REGRESSION: incremental STA not faster than full recompute\n";
    return 1;
  }
  if (doc.find("sta.multicorner.identical")->value != 1.0) {
    std::cerr << "REGRESSION: multi-corner fan-out diverged from serial "
                 "per-corner sessions\n";
    return 1;
  }
  if (doc.find("sta.multicorner.speedup")->value <= 1.0) {
    std::cerr << "REGRESSION: concurrent corner fan-out not faster than "
                 "serial per-corner sessions\n";
    return 1;
  }
  if (doc.find("sta.partition.identical")->value != 1.0) {
    std::cerr << "REGRESSION: partitioned full sweep diverged from the "
                 "whole-graph sweep\n";
    return 1;
  }
  return 0;
}

namespace {

/// Two small flow-built designs (graph + features + masks + labels) shared by
/// every serve traffic pattern: mixing designs exercises the batcher's
/// per-design dedup, which is where coalescing wins its speedup.
struct ServeFixture {
  std::unique_ptr<nl::CellLibrary> library;
  std::vector<flow::DesignData> data;
  std::vector<model::PreparedDesign> prepared;
  model::ModelConfig config;
};

ServeFixture make_serve_fixture() {
  ServeFixture f;
  f.library = std::make_unique<nl::CellLibrary>(nl::CellLibrary::standard());
  flow::FlowConfig fc;
  fc.scale = 0.01;
  flow::DatasetFlow flow(*f.library, fc);
  const auto specs = gen::paper_benchmarks();
  f.data.push_back(flow.run(gen::benchmark_by_name(specs, "xgate")));
  f.data.push_back(flow.run(gen::benchmark_by_name(specs, "steelcore")));
  f.config.grid = 32;
  for (const flow::DesignData& d : f.data) {
    f.prepared.push_back(model::prepare_design(d, f.config));
  }
  return f;
}

/// Non-owning request over a fixture-owned PreparedDesign (aliasing ctor).
model::PredictRequest request_for(const model::PreparedDesign& pd) {
  model::PredictRequest req;
  req.design =
      std::shared_ptr<const model::PreparedDesign>(std::shared_ptr<const void>(), &pd);
  return req;
}

double quantile_ms(std::vector<double> ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const std::size_t idx = std::min(
      ms.size() - 1, static_cast<std::size_t>(q * static_cast<double>(ms.size())));
  return ms[idx];
}

struct ArmResult {
  double seconds = 0.0;            ///< wall time of the whole arm
  std::vector<double> latency_ms;  ///< per-request, client-observed
  std::uint64_t errors = 0;        ///< rejected submits / missing futures

  double rps(int total) const {
    return seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
  }
};

/// Closed loop, direct: each client thread calls the engine synchronously.
ArmResult direct_arm(const model::InferenceEngine& engine, const ServeFixture& f,
                     int clients, int per_client) {
  ArmResult r;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const model::PreparedDesign& pd =
            f.prepared[static_cast<std::size_t>(c + i) % f.prepared.size()];
        const auto s = std::chrono::steady_clock::now();
        keep(engine.predict(pd).numel());
        lat[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - s)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (auto& l : lat) r.latency_ms.insert(r.latency_ms.end(), l.begin(), l.end());
  return r;
}

/// Closed loop, served: each client submits one request and waits for its
/// future; the service coalesces whatever the clients have in flight.
ArmResult service_arm(serve::PredictionService& service, const ServeFixture& f,
                      int clients, int per_client) {
  ArmResult r;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::uint64_t> errs(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        const model::PreparedDesign& pd =
            f.prepared[static_cast<std::size_t>(c + i) % f.prepared.size()];
        const auto s = std::chrono::steady_clock::now();
        auto fut = service.submit(request_for(pd));
        if (!fut.has_value()) {  // closed loop never fills the queue
          ++errs[static_cast<std::size_t>(c)];
          continue;
        }
        keep(fut->get().arrival_ps.numel());
        lat[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - s)
                .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (auto& l : lat) r.latency_ms.insert(r.latency_ms.end(), l.begin(), l.end());
  for (std::uint64_t e : errs) r.errors += e;
  return r;
}

}  // namespace

BenchDoc run_serve_suite(bool smoke) {
  const ServeFixture f = make_serve_fixture();
  rtp::model::FusionModel seedmodel(f.config);
  seedmodel.set_label_stats(1000.0f, 300.0f);  // inference cost, not accuracy
  const auto snapshot = model::WeightSnapshot::from_model(seedmodel);
  const model::InferenceEngine engine(snapshot);

  // Invariant: one mixed batch (whole designs + endpoint subsets) must be
  // bit-identical to issuing the same requests sequentially.
  bool identical = true;
  {
    model::PredictBatch batch;
    for (const model::PreparedDesign& pd : f.prepared) {
      batch.push_back(request_for(pd));
      model::PredictRequest subset = request_for(pd);
      const int rows = static_cast<int>(pd.endpoints.size());
      for (int e = 0; e < std::min(3, rows); ++e) {
        subset.endpoints.push_back(rows - 1 - e);
      }
      batch.push_back(std::move(subset));
    }
    const std::vector<nn::Tensor> batched = engine.predict_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const nn::Tensor one = engine.predict(batch[i]);
      if (one.numel() != batched[i].numel()) identical = false;
      for (std::size_t k = 0; identical && k < one.numel(); ++k) {
        identical = one[k] == batched[i][k];
      }
    }
  }

  // Closed-loop A/B: same clients, same request sequence, direct vs served.
  const int clients = 4;
  const int per_client = smoke ? 10 : 100;
  const int total = clients * per_client;
  const ArmResult direct = direct_arm(engine, f, clients, per_client);
  serve::ServeConfig sc;
  sc.max_batch = 8;
  sc.max_delay_us = 200;
  sc.workers = 1;
  ArmResult served;
  serve::PredictionService::Stats closed_stats;
  {
    serve::PredictionService service(snapshot, sc);
    served = service_arm(service, f, clients, per_client);
    closed_stats = service.stats();
  }

  // Observability overhead: the same closed loop with the flight recorder
  // off — set_enabled(false) clears the capture bit, so spans and flows stop
  // at the TraceScope gate, approximating an RTP_OBS=OFF build at runtime.
  // Report-only (negative tolerance): the ratio is too noisy at smoke sizes
  // to gate on, but a recorder hot-path regression shows up in the table.
  ArmResult served_dark;
  {
    const bool recorder_was_on = obs::FlightRecorder::enabled();
    obs::FlightRecorder::set_enabled(false);
    serve::PredictionService service(snapshot, sc);
    served_dark = service_arm(service, f, clients, per_client);
    obs::FlightRecorder::set_enabled(recorder_was_on);
  }

  // Open-loop burst: fire queue_capacity submits back to back; admission
  // control must accept every one (rejected == 0 is the gated invariant).
  std::uint64_t burst_rejected = 0;
  {
    serve::ServeConfig burst_config;
    burst_config.max_batch = 16;
    burst_config.max_delay_us = 0;  // drain in max_batch chunks immediately
    burst_config.queue_capacity = smoke ? 32 : 128;
    serve::PredictionService service(snapshot, burst_config);
    std::vector<std::future<serve::PredictResponse>> futures;
    for (int i = 0; i < burst_config.queue_capacity; ++i) {
      auto fut = service.submit(
          request_for(f.prepared[static_cast<std::size_t>(i) % f.prepared.size()]));
      if (fut.has_value()) {
        futures.push_back(std::move(*fut));
      }
    }
    for (auto& fut : futures) keep(fut.get().arrival_ps.numel());
    burst_rejected = service.stats().rejected +
                     (static_cast<std::uint64_t>(burst_config.queue_capacity) -
                      futures.size());
  }

  const double direct_p99 = quantile_ms(direct.latency_ms, 0.99);
  const double served_p99 = quantile_ms(served.latency_ms, 0.99);
  const double throughput_speedup =
      direct.rps(total) > 0.0 ? served.rps(total) / direct.rps(total) : 0.0;
  const double p99_speedup = served_p99 > 0.0 ? direct_p99 / served_p99 : 0.0;
  const double mean_batch =
      closed_stats.batches > 0
          ? static_cast<double>(closed_stats.completed) /
                static_cast<double>(closed_stats.batches)
          : 0.0;

  BenchDoc doc;
  doc.suite = "serve";
  doc.smoke = smoke;
  doc.metrics.push_back(
      {"serve.identical_results", identical ? 1.0 : 0.0, "bool", true, 0.0});
  doc.metrics.push_back(
      {"serve.throughput_speedup", throughput_speedup, "ratio", true, kRatioTolerance});
  doc.metrics.push_back(
      {"serve.p99_latency_speedup", p99_speedup, "ratio", true, kRatioTolerance});
  doc.metrics.push_back({"serve.open_loop_rejected",
                         static_cast<double>(burst_rejected), "count", false, 0.0});
  doc.metrics.push_back(
      {"serve.closed_loop_errors",
       static_cast<double>(served.errors), "count", false, 0.0});
  doc.metrics.push_back({"serve.direct_rps", direct.rps(total), "rps", true, -1.0});
  doc.metrics.push_back({"serve.service_rps", served.rps(total), "rps", true, -1.0});
  doc.metrics.push_back({"serve.direct_p50_ms",
                         quantile_ms(direct.latency_ms, 0.50), "ms", false, -1.0});
  doc.metrics.push_back({"serve.direct_p99_ms", direct_p99, "ms", false, -1.0});
  doc.metrics.push_back({"serve.service_p50_ms",
                         quantile_ms(served.latency_ms, 0.50), "ms", false, -1.0});
  doc.metrics.push_back({"serve.service_p99_ms", served_p99, "ms", false, -1.0});
  doc.metrics.push_back({"serve.mean_batch", mean_batch, "count", true, -1.0});
  // Recorder-off rps over recorder-on rps: ~1.0 means the always-on flight
  // recorder is free at this request size.
  const double obs_overhead = served.rps(total) > 0.0
                                  ? served_dark.rps(total) / served.rps(total)
                                  : 0.0;
  doc.metrics.push_back({"serve.obs_overhead", obs_overhead, "ratio", false, -1.0});
  doc.metrics.push_back(
      {"serve.requests", static_cast<double>(total), "count", true, -1.0});

  std::cerr << "serve A/B (" << clients << " clients x " << per_client
            << " reqs, 2 designs): direct " << direct.rps(total) << " rps / p99 "
            << direct_p99 << " ms, served " << served.rps(total) << " rps / p99 "
            << served_p99 << " ms, mean batch " << mean_batch << ", identical="
            << (identical ? "yes" : "NO") << "\n";
  return doc;
}

int run_serve_harness(const std::string& path, bool smoke) {
  const BenchDoc doc = run_serve_suite(smoke);
  if (!write_bench_json(doc, path)) {
    std::cerr << "bench: cannot write " << path << "\n";
    return 2;
  }
  std::cerr << "wrote " << path << "\n";
  if (doc.find("serve.identical_results")->value != 1.0) {
    std::cerr << "REGRESSION: batched inference diverged from sequential\n";
    return 1;
  }
  if (doc.find("serve.open_loop_rejected")->value != 0.0 ||
      doc.find("serve.closed_loop_errors")->value != 0.0) {
    std::cerr << "REGRESSION: admission control rejected in-capacity traffic\n";
    return 1;
  }
  return 0;
}

namespace {

/// v1 readers: normalize the PR 2/4 schemas into the v2 metric vocabulary
/// (same names run_nn_suite / run_sta_suite emit) so old committed baselines
/// gate the same metrics.
BenchDoc from_nn_v1(const core::json::Value& root) {
  BenchDoc doc;
  doc.suite = "nn";
  doc.smoke = root.bool_or("smoke", false);
  if (const core::json::Value* cases = root.find("cases");
      cases != nullptr && cases->is_array()) {
    for (const core::json::Value& c : cases->items()) {
      const std::string name = c.string_or("name", "");
      if (name.empty()) continue;
      doc.metrics.push_back({name + ".speedup", c.number_or("speedup", 0.0),
                             "ratio", true, kRatioTolerance});
      doc.metrics.push_back(
          {name + ".naive_ns", c.number_or("naive_ns", 0.0), "ns", false, -1.0});
      doc.metrics.push_back({name + ".blocked_ns",
                             c.number_or("blocked_ns", 0.0), "ns", false, -1.0});
      doc.metrics.push_back({name + ".blocked_gflops",
                             c.number_or("blocked_gflops", 0.0), "gflops", true,
                             -1.0});
    }
  }
  if (const core::json::Value* sweep = root.find("thread_sweep");
      sweep != nullptr && sweep->is_array()) {
    for (const core::json::Value& s : sweep->items()) {
      const std::string name = s.string_or("name", "");
      const int threads = static_cast<int>(s.number_or("threads", 0.0));
      if (name.empty() || threads <= 0) continue;
      doc.metrics.push_back({name + ".threads" + std::to_string(threads) + ".ns",
                             s.number_or("ns", 0.0), "ns", false, -1.0});
    }
  }
  return doc;
}

BenchDoc from_sta_v1(const core::json::Value& root) {
  BenchDoc doc;
  doc.suite = "sta";
  doc.smoke = root.bool_or("smoke", false);
  doc.metrics.push_back({"sta.speedup", root.number_or("speedup", 0.0), "ratio",
                         true, kRatioTolerance});
  doc.metrics.push_back({"sta.identical_results",
                         root.bool_or("identical_results", false) ? 1.0 : 0.0,
                         "bool", true, 0.0});
  doc.metrics.push_back(
      {"sta.incremental_s", root.number_or("incremental_s", 0.0), "s", false, -1.0});
  doc.metrics.push_back(
      {"sta.full_s", root.number_or("full_s", 0.0), "s", false, -1.0});
  doc.metrics.push_back({"sta.passes_run", root.number_or("passes_run", 0.0),
                         "count", true, -1.0});
  doc.metrics.push_back({"sta.clock_period_ps",
                         root.number_or("clock_period_ps", 0.0), "ps", false, -1.0});
  doc.metrics.push_back(
      {"sta.wns_after", root.number_or("wns_after", 0.0), "ps", true, -1.0});
  doc.metrics.push_back(
      {"sta.tns_after", root.number_or("tns_after", 0.0), "ps", true, -1.0});
  return doc;
}

}  // namespace

std::optional<BenchDoc> load_baseline(const std::string& path,
                                      std::string* error) {
  const std::optional<core::json::Value> root = core::json::parse_file(path, error);
  if (!root.has_value()) return std::nullopt;
  const std::string schema = root->string_or("schema", "");
  if (schema == "rtp-bench-nn-v1") return from_nn_v1(*root);
  if (schema == "rtp-bench-sta-v1") return from_sta_v1(*root);
  if (schema != "rtp-bench-v2") {
    if (error != nullptr) *error = path + ": unknown schema \"" + schema + "\"";
    return std::nullopt;
  }
  BenchDoc doc;
  doc.suite = root->string_or("suite", "");
  doc.smoke = root->bool_or("smoke", false);
  const core::json::Value* metrics = root->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    if (error != nullptr) *error = path + ": missing \"metrics\" object";
    return std::nullopt;
  }
  for (const auto& [name, m] : metrics->members()) {
    if (!m.is_object()) continue;
    doc.metrics.push_back({name, m.number_or("value", 0.0),
                           m.string_or("unit", ""),
                           m.string_or("better", "higher") == "higher",
                           m.number_or("tolerance", -1.0)});
  }
  return doc;
}

}  // namespace rtp::bench
