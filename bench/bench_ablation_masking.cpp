// Ablation of the endpoint-wise masking technique (Section V.B): the full
// model with critical-region masks vs the same model where every endpoint
// consumes the identical global layout map. The paper motivates masking by
// arguing a shared layout embedding "does not make sense"; this bench
// quantifies that argument on our substrate.

#include <cstdio>

#include "core/log.hpp"
#include "eval/experiments.hpp"
#include "eval/table.hpp"

namespace {

std::vector<double> test_r2(const rtp::eval::DatasetBundle& dataset,
                            rtp::model::ModelConfig config) {
  rtp::model::FusionModel model(config);
  std::vector<rtp::model::PreparedDesign> train, test;
  for (const auto* d : dataset.train_designs()) {
    train.push_back(rtp::model::prepare_design(*d, config));
  }
  for (const auto* d : dataset.test_designs()) {
    test.push_back(rtp::model::prepare_design(*d, config));
  }
  std::vector<rtp::model::PreparedDesign*> view;
  for (auto& p : train) view.push_back(&p);
  rtp::model::TrainOptions options;
  options.epochs = config.epochs;
  rtp::model::train_model(model, view, options);

  std::vector<double> scores;
  const auto test_ptrs = dataset.test_designs();
  for (std::size_t t = 0; t < test.size(); ++t) {
    const rtp::nn::Tensor pred = model.predict(test[t]);
    std::vector<double> p(pred.numel());
    for (std::size_t i = 0; i < pred.numel(); ++i) p[i] = pred[i];
    scores.push_back(rtp::eval::design_r2(test_ptrs[t]->label_arrival, p));
  }
  return scores;
}

}  // namespace

int main() {
  using rtp::eval::Table;
  rtp::set_log_level(rtp::LogLevel::kInfo);

  const rtp::eval::ExperimentConfig config = rtp::eval::ExperimentConfig::ci();
  const rtp::eval::DatasetBundle dataset = rtp::eval::build_dataset(config);

  rtp::model::ModelConfig with_mask = config.model;
  rtp::model::ModelConfig without_mask = config.model;
  without_mask.use_masking = false;

  RTP_LOG_INFO("ablation: training full model WITH endpoint-wise masking");
  const std::vector<double> masked = test_r2(dataset, with_mask);
  RTP_LOG_INFO("ablation: training full model WITHOUT masking (shared global map)");
  const std::vector<double> unmasked = test_r2(dataset, without_mask);

  std::printf("\nAblation — endpoint-wise masking (endpoint arrival R^2 on test)\n\n");
  Table table({"bench", "with masking", "without masking", "delta"});
  const auto test_ptrs = dataset.test_designs();
  double am = 0.0, au = 0.0;
  for (std::size_t t = 0; t < masked.size(); ++t) {
    table.add_row({test_ptrs[t]->name, Table::fmt(masked[t]), Table::fmt(unmasked[t]),
                   Table::fmt(masked[t] - unmasked[t])});
    am += masked[t] / masked.size();
    au += unmasked[t] / masked.size();
  }
  table.add_row({"avg", Table::fmt(am), Table::fmt(au), Table::fmt(am - au)});
  table.print();
  std::printf(
      "\nPaper expectation (Section V.B): masking helps. Caveat at this scale:\n"
      "the CI config rasterizes masks at %d x %d (paper: 128 x 128), where a\n"
      "deep path's critical region covers most bins, so masking mainly removes\n"
      "the global map's design-level calibration signal. See EXPERIMENTS.md.\n",
      config.model.grid / 4, config.model.grid / 4);
  return 0;
}
