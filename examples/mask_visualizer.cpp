// Mask visualizer: renders the endpoint-wise critical-region masks of
// Section V.B / Fig. 6 as PGM images — the global layout map plus the masked
// view a specific endpoint's layout embedding is computed from.
//
//   ./mask_visualizer [benchmark] [num_endpoints]    (default: rocket 3)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/log.hpp"
#include "gen/circuit_generator.hpp"
#include "layout/feature_maps.hpp"
#include "model/fusion.hpp"
#include "place/placer.hpp"
#include "timing/longest_path.hpp"

int main(int argc, char** argv) {
  using namespace rtp;
  set_log_level(LogLevel::kWarn);
  const std::string name = argc > 1 ? argv[1] : "rocket";
  const int num_endpoints = argc > 2 ? std::atoi(argv[2]) : 3;

  const nl::CellLibrary library = nl::CellLibrary::standard();
  const auto specs = gen::paper_benchmarks();
  const gen::BenchmarkSpec& spec = gen::benchmark_by_name(specs, name);
  gen::CircuitGenerator generator(library);
  gen::GeneratedCircuit circuit = generator.generate(spec, 0.02);
  place::PlacerConfig placer_config;
  placer_config.utilization = spec.utilization;
  placer_config.num_macros = spec.num_macros;
  placer_config.seed = spec.seed;
  const layout::Placement placement = place::Placer(placer_config).place(circuit.netlist);

  constexpr int kGrid = 128;
  layout::GridMap density = layout::make_density_map(circuit.netlist, placement, kGrid, kGrid);
  density.normalize();
  density.write_pgm("mask_global_density.pgm");
  std::printf("wrote mask_global_density.pgm (%dx%d)\n", kGrid, kGrid);

  tg::TimingGraph graph(circuit.netlist);
  tg::LongestPathFinder finder(graph);
  Rng rng(7);

  // Pick endpoints spread across cone depths: shallowest, median, deepest.
  std::vector<nl::PinId> endpoints = graph.endpoints();
  std::sort(endpoints.begin(), endpoints.end(), [&](nl::PinId a, nl::PinId b) {
    return graph.level(a) < graph.level(b);
  });
  for (int i = 0; i < num_endpoints && !endpoints.empty(); ++i) {
    const std::size_t pick = endpoints.size() * static_cast<std::size_t>(i) /
                             std::max(1, num_endpoints - 1);
    const nl::PinId ep = endpoints[std::min(pick, endpoints.size() - 1)];
    const tg::LongestPath path = finder.find(ep, rng);
    const model::EndpointMasks masks =
        model::build_endpoint_masks(graph, placement, {path}, kGrid);
    // Render mask ⊙ density (Eq. 6) — what the FC layer actually consumes.
    layout::GridMap masked(kGrid, kGrid, placement.die());
    for (std::int32_t bin : masks.bins[0]) {
      masked.values()[static_cast<std::size_t>(bin)] =
          std::max(0.15f, density.values()[static_cast<std::size_t>(bin)]);
    }
    char file[128];
    std::snprintf(file, sizeof file, "mask_endpoint_pin%d_level%d.pgm", ep,
                  graph.level(ep));
    masked.write_pgm(file);
    std::printf("endpoint pin %-6d level %-3d: %4zu mask bins, %3zu path net edges -> %s\n",
                ep, graph.level(ep), masks.bins[0].size(), path.net_edges(graph).size(),
                file);
  }
  std::printf("\nThe masked images show each endpoint's critical region: the union of\n"
              "net-edge bounding boxes along its longest path (Eq. 4-5 of the paper).\n");
  return 0;
}
