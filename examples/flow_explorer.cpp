// Flow explorer: dissects one benchmark's journey through the full data flow
// — the paper's Fig. 1 phenomenon made observable. Prints netlist statistics,
// the timing optimizer's move log, the restructuring impact per metric, the
// deepest endpoint's critical path, and where prediction labels come from.
//
//   ./flow_explorer [benchmark] [scale]     (default: chacha 0.05)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/log.hpp"
#include "flow/dataset_flow.hpp"
#include "timing/longest_path.hpp"

int main(int argc, char** argv) {
  using namespace rtp;
  set_log_level(LogLevel::kWarn);
  const std::string name = argc > 1 ? argv[1] : "chacha";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  const nl::CellLibrary library = nl::CellLibrary::standard();
  flow::FlowConfig config;
  config.scale = scale;
  flow::DatasetFlow flow(library, config);
  const auto specs = gen::paper_benchmarks();
  const flow::DesignData d = flow.run(gen::benchmark_by_name(specs, name));

  std::printf("=== %s (scale %.3f, %s split) ===\n", d.name.c_str(), scale,
              d.is_train ? "train" : "test");
  std::printf("input:   %s\n", d.input_netlist.summary().c_str());
  std::printf("signoff: %s\n", d.signoff_netlist.summary().c_str());
  std::printf("clock period: %.0f ps\n\n", d.clock_period);

  const opt::OptimizerReport& r = d.opt_report;
  std::printf("optimizer: %d sizing, %d buffers, %d restructures (%d rejected for space)\n",
              r.moves_sizing, r.moves_buffer, r.moves_restructure,
              r.moves_rejected_space);
  std::printf("  wns %.1f -> %.1f ps, tns %.1f -> %.1f ps\n", r.wns_before, r.wns_after,
              r.tns_before, r.tns_after);
  std::printf("  replaced: %.1f%% net edges, %.1f%% cell edges (paper %s: %.1f%% / %.1f%%)\n",
              100 * d.replaced_net_ratio, 100 * d.replaced_cell_ratio, d.name.c_str(),
              100 * gen::benchmark_by_name(specs, name).target_net_replaced,
              100 * gen::benchmark_by_name(specs, name).target_cell_replaced);
  std::printf("  unreplaced-arc delay shift: nets %.1f%%, cells %.1f%%\n\n",
              100 * d.delta_net_delay_ratio, 100 * d.delta_cell_delay_ratio);

  // Deepest endpoint and its longest path (the masking input, Fig. 6).
  tg::TimingGraph graph(d.input_netlist);
  nl::PinId deepest = graph.endpoints().front();
  for (nl::PinId ep : graph.endpoints()) {
    if (graph.level(ep) > graph.level(deepest)) deepest = ep;
  }
  Rng rng(1);
  const tg::LongestPath path = tg::LongestPathFinder(graph).find(deepest, rng);
  std::printf("deepest endpoint: pin %d at topological level %d (graph max %d)\n",
              deepest, graph.level(deepest), graph.max_level());
  std::printf("  longest path: %zu pins, %zu net edges for the critical region\n",
              path.pins.size(), path.net_edges(graph).size());

  // Label provenance for that endpoint.
  const std::size_t idx = [&] {
    for (std::size_t i = 0; i < d.endpoints.size(); ++i) {
      if (d.endpoints[i] == deepest) return i;
    }
    return std::size_t{0};
  }();
  std::printf("  sign-off arrival (label): %.1f ps; without optimization: %.1f ps\n",
              d.label_arrival[idx], d.noopt_arrival[idx]);

  // Semi-supervision footprint (what the local-view baselines can train on).
  int labeled = 0, unlabeled = 0;
  for (double a : d.arc_label) (a >= 0.0 ? labeled : unlabeled)++;
  std::printf("\nlocal arc labels: %d labeled, %d unlabeled (replaced regions, Fig. 1)\n",
              labeled, unlabeled);
  std::printf("flow stage runtimes: opt %.2fs, route %.2fs, sta %.2fs\n", d.timings.opt,
              d.timings.route, d.timings.sta);
  return 0;
}
