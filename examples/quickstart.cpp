// Quickstart: the whole library in one file.
//
// Builds a small netlist by hand, places it, runs pre-route and sign-off STA
// (single-corner and across a 3-corner PVT set), lets the timing optimizer
// restructure it, and finally trains the restructure-tolerant predictor on a
// generated design and predicts sign-off endpoint arrival times from the
// pre-routing snapshot.
//
//   ./quickstart
//   RTP_TRACE=trace.json RTP_REPORT=report.json ./quickstart   # + observability
//
// The RTP_TRACE variant writes a chrome://tracing timeline of every pipeline
// stage and the RTP_REPORT one a JSON run report (counters, span aggregates,
// build provenance) at exit — no code changes needed.

#include <cstdio>

#include "core/log.hpp"
#include "eval/metrics.hpp"
#include "flow/dataset_flow.hpp"
#include "model/trainer.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "opt/optimizer.hpp"
#include "sta/multicorner.hpp"
#include "sta/session.hpp"

int main() {
  using namespace rtp;
  set_log_level(LogLevel::kWarn);

  // ---- 1. a netlist by hand: PI -> NAND2 -> DFF -> INV -> PO ----
  const nl::CellLibrary library = nl::CellLibrary::standard();
  nl::Netlist netlist(&library);
  const nl::PinId pi1 = netlist.add_primary_input();
  const nl::PinId pi2 = netlist.add_primary_input();
  const nl::PinId po = netlist.add_primary_output();
  const nl::CellId nand2 = netlist.add_cell(library.find(nl::GateKind::kNand2, 1));
  const nl::CellId dff = netlist.add_cell(library.find(nl::GateKind::kDff, 1));
  const nl::CellId inv = netlist.add_cell(library.find(nl::GateKind::kInv, 1));
  netlist.add_sink(netlist.add_net(pi1), netlist.cell(nand2).inputs[0]);
  netlist.add_sink(netlist.add_net(pi2), netlist.cell(nand2).inputs[1]);
  netlist.add_sink(netlist.add_net(netlist.cell(nand2).output), netlist.cell(dff).inputs[0]);
  netlist.add_sink(netlist.add_net(netlist.cell(dff).output), netlist.cell(inv).inputs[0]);
  netlist.add_sink(netlist.add_net(netlist.cell(inv).output), po);
  netlist.validate();
  std::printf("hand-built netlist: %s\n", netlist.summary().c_str());

  // ---- 2. place it and run STA ----
  layout::Placement placement(layout::Die{30.0, 30.0}, netlist.num_cell_slots(),
                              netlist.num_pin_slots());
  placement.set_port_pos(pi1, {0.0, 10.0});
  placement.set_port_pos(pi2, {0.0, 20.0});
  placement.set_cell_pos(nand2, {10.0, 15.0});
  placement.set_cell_pos(dff, {18.0, 15.0});
  placement.set_cell_pos(inv, {24.0, 15.0});
  placement.set_port_pos(po, {30.0, 15.0});

  // A TimingSession keeps the levelized graph and per-pin timing alive between
  // queries; the first update() is a full sweep, later ones re-propagate only
  // the cone downstream of what changed. (sta::run_sta is the one-shot
  // convenience wrapper over the same engine.)
  sta::StaConfig sta_config;
  sta::TimingSession session(netlist, placement, sta_config);
  const sta::StaResult& timing = session.update();
  std::printf("pre-route STA: %zu endpoints, wns %.1f ps\n", timing.endpoints.size(),
              timing.wns);
  for (std::size_t i = 0; i < timing.endpoints.size(); ++i) {
    std::printf("  endpoint pin %d: arrival %.1f ps, slack %.1f ps\n",
                timing.endpoints[i], timing.endpoint_arrival[i], timing.endpoint_slack[i]);
  }

  // Incremental edit: upsize the output inverter and re-time just its cone.
  const double wns_before = timing.wns;  // `timing` aliases the session results
  netlist.resize_cell(inv, library.upsize(netlist.cell(inv).lib));
  sta::EditBatch edit;
  edit.resized_cells.push_back(inv);
  session.apply(edit);
  const sta::StaResult& retimed = session.update();
  std::printf("after upsizing the INV: wns %.1f -> %.1f ps\n", wns_before, retimed.wns);

  // ---- 2b. the same incremental edit across a 3-corner PVT set ----
  // A MultiCornerSession fans one TimingSession per corner (fast/typical/slow
  // from the registry; the RTP_CORNERS env var overrides the set) across the
  // thread pool and merges per-endpoint results into worst-across-corners
  // slack. An edit is applied once and re-timed in every corner concurrently.
  sta::MultiCornerSession corners(netlist, placement, sta_config,
                                  sta::registry_corners());
  const sta::MultiCornerResult& merged = corners.update();
  std::printf("\n3-corner STA: merged (worst-case) wns %.1f ps\n", merged.wns);
  for (std::size_t c = 0; c < corners.num_corners(); ++c) {
    std::printf("  corner %-8s wns %.1f ps\n", corners.corner(c).name.c_str(),
                corners.corner_results(c).wns);
  }
  netlist.resize_cell(inv, library.downsize(netlist.cell(inv).lib));
  sta::EditBatch corner_edit;
  corner_edit.resized_cells.push_back(inv);
  corners.apply(corner_edit);
  const sta::MultiCornerResult& remerged = corners.update();
  std::printf("after downsizing the INV in every corner:\n");
  for (std::size_t i = 0; i < remerged.endpoints.size(); ++i) {
    const auto worst = static_cast<std::size_t>(remerged.worst_corner[i]);
    std::printf("  endpoint pin %d: worst slack %.1f ps (%s corner)\n",
                remerged.endpoints[i], remerged.endpoint_slack[i],
                corners.corner(worst).name.c_str());
  }

  // ---- 3. the full data flow + the predictor on a generated benchmark ----
  // An obs::Sink observes each stage as it completes; SpanAccumulator just
  // aggregates (obs::LoggingSink would stream to stderr instead).
  obs::report_note("quickstart.benchmark", "steelcore");
  obs::SpanAccumulator stage_times;
  flow::FlowConfig flow_config;
  flow_config.scale = 0.05;
  flow::DatasetFlow flow(library, flow_config);
  const auto specs = gen::paper_benchmarks();
  const flow::DesignData train_design =
      flow.run(gen::benchmark_by_name(specs, "steelcore"), &stage_times);
  std::printf("\nflow on steelcore: clock %.0f ps, %.0f%% nets replaced by the optimizer\n",
              train_design.clock_period, 100.0 * train_design.replaced_net_ratio);
  for (const char* stage : {"flow.gen", "flow.place", "flow.opt", "flow.route", "flow.sta"}) {
    std::printf("  %-14s %6.1f ms\n", stage, 1e3 * stage_times.total(stage));
  }

  model::ModelConfig model_config;
  model_config.grid = 32;
  model_config.epochs = 60;
  model::PreparedDesign prepared = model::prepare_design(train_design, model_config);
  model::FusionModel model(model_config);
  std::vector<model::PreparedDesign*> train_set = {&prepared};
  obs::LoggingSink progress(/*every=*/20);  // logs every 20th epoch loss to stderr
  const model::TrainResult tr =
      model::train_model(model, train_set, {.epochs = 60, .sink = &progress});
  std::printf("trained %d epochs in %.1fs, final loss %.4f\n", model_config.epochs,
              tr.seconds, tr.epoch_loss.back());

  const nn::Tensor pred = model.predict(prepared);
  std::vector<double> p(pred.numel());
  for (std::size_t i = 0; i < pred.numel(); ++i) p[i] = pred[i];
  std::printf("train-design endpoint arrival R^2 = %.3f\n",
              eval::r2_score(train_design.label_arrival, p));
  std::printf("\nquickstart done.\n");
  return 0;
}
