// Placement what-if: the use case the paper's introduction motivates —
// fast pre-routing feedback for timing-driven physical design.
//
// Three candidate placements of the same netlist (different placer seeds /
// utilizations) are scored two ways:
//   1. the trained restructure-tolerant predictor (milliseconds), and
//   2. the full optimize+route+sign-off flow (the "ground truth", seconds);
// then we check both rankings agree on the best candidate.
//
//   ./placement_whatif

#include <cstdio>

#include "core/log.hpp"
#include "eval/metrics.hpp"
#include "flow/dataset_flow.hpp"
#include "model/trainer.hpp"

namespace {

using namespace rtp;

/// Mean predicted endpoint arrival of a candidate (lower = better timing).
double predicted_score(model::FusionModel& model, model::PreparedDesign& prepared) {
  const nn::Tensor pred = model.predict(prepared);
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) acc += pred[i];
  return acc / static_cast<double>(pred.numel());
}

double true_score(const flow::DesignData& d) {
  double acc = 0.0;
  for (double a : d.label_arrival) acc += a;
  return acc / static_cast<double>(d.label_arrival.size());
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  const nl::CellLibrary library = nl::CellLibrary::standard();
  const auto specs = gen::paper_benchmarks();

  // Train the predictor on two train-split designs (kept small for demo speed).
  model::ModelConfig model_config;
  model_config.epochs = 100;
  flow::FlowConfig flow_config;
  flow_config.scale = 0.03;
  flow::DatasetFlow flow(library, flow_config);
  // Training corpus: re-seeded variants of the same design class we will
  // explore (arm9), plus two small cores for diversity. This mirrors real
  // usage — train on yesterday's spins of the block, score today's candidates.
  std::printf("training the predictor on arm9-class variants...\n");
  std::vector<flow::DesignData> train_data;
  for (int seed_offset : {5000, 6000, 7000, 8000}) {
    gen::BenchmarkSpec spec = gen::benchmark_by_name(specs, "arm9");
    spec.seed += static_cast<unsigned>(seed_offset);
    train_data.push_back(flow.run(spec));
  }
  for (const char* n : {"steelcore", "xgate"}) {
    for (int seed_offset : {0, 1000}) {
      gen::BenchmarkSpec spec = gen::benchmark_by_name(specs, n);
      spec.seed += static_cast<unsigned>(seed_offset);
      train_data.push_back(flow.run(spec));
    }
  }
  std::vector<model::PreparedDesign> prepared_train;
  for (const auto& d : train_data) {
    prepared_train.push_back(model::prepare_design(d, model_config));
  }
  model::FusionModel model(model_config);
  std::vector<model::PreparedDesign*> view;
  for (auto& p : prepared_train) view.push_back(&p);
  model::train_model(model, view, {.epochs = model_config.epochs});

  // Three placement candidates of a fresh design: vary seed and utilization.
  std::printf("\nscoring 3 placement candidates of arm9:\n\n");
  struct Candidate {
    const char* label;
    std::uint64_t seed;
    double utilization;
  };
  const Candidate candidates[] = {
      {"sparse     (util 0.55)", 106, 0.55},
      {"baseline   (util 0.69)", 106, 0.69},
      {"dense      (util 0.85)", 106, 0.85},
  };
  double best_pred = 1e18, best_true = 1e18;
  int best_pred_idx = -1, best_true_idx = -1;
  for (int i = 0; i < 3; ++i) {
    gen::BenchmarkSpec spec = gen::benchmark_by_name(specs, "arm9");
    spec.seed = candidates[i].seed;
    spec.utilization = candidates[i].utilization;
    const flow::DesignData d = flow.run(spec);
    model::PreparedDesign prepared = model::prepare_design(d, model_config);
    const double pred = predicted_score(model, prepared);
    const double truth = true_score(d);
    std::printf("  %-24s predicted mean arrival %7.1f ps | sign-off %7.1f ps\n",
                candidates[i].label, pred, truth);
    if (pred < best_pred) {
      best_pred = pred;
      best_pred_idx = i;
    }
    if (truth < best_true) {
      best_true = truth;
      best_true_idx = i;
    }
  }
  std::printf("\npredictor picks candidate %d, sign-off flow picks candidate %d — %s\n",
              best_pred_idx, best_true_idx,
              best_pred_idx == best_true_idx ? "rankings agree" : "rankings differ");
  return 0;
}
