// rtp_inspect — text dashboard over the repo's observability artifacts.
//
//   rtp_inspect <file> [--tail N]
//
// The file kind is auto-detected:
//   - RTP_STATS jsonl ("rtp-stats-v1" samples): prints the queue/latency
//     trajectory (last N samples, default 20) and a final-sample summary.
//   - RTP_REPORT run report: build/env provenance, top counters, gauges,
//     histogram quantiles, and the top spans by total time.
//   - chrome-tracing JSON (RTP_TRACE or a flight-recorder dump): event
//     totals, top span names by total duration, and flow-chain resolution
//     (how many request chains have a matching start and finish).
//
// Everything is plain text on stdout; exit status 0 on success, 1 on a
// missing/unparseable file. No dependencies beyond core::json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hpp"

namespace {

using rtp::core::json::Value;

double num_at(const Value& obj, const std::string& key, double fallback = 0.0) {
  const Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string fmt_ns(double ns) {
  char buf[64];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string fmt_count(double v) {
  char buf[64];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

void rule(const char* title) {
  std::printf("\n== %s %.*s\n", title,
              static_cast<int>(std::max<std::size_t>(0, 60 - std::strlen(title))),
              "============================================================");
}

// ---- stats mode -----------------------------------------------------------

int render_stats(const std::vector<Value>& samples, int tail) {
  std::printf("rtp-stats-v1: %zu samples, %.1f ms covered\n", samples.size(),
              num_at(samples.back(), "t_ms") - num_at(samples.front(), "t_ms"));

  // Trajectory columns: every gauge, plus p99 of serve latency histograms —
  // the queue/latency story over time. Bounded to keep rows readable.
  std::vector<std::string> gauge_cols, hist_cols;
  if (const Value* gauges = samples.back().find("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      (void)v;
      if (gauge_cols.size() < 4) gauge_cols.push_back(name);
    }
  }
  if (const Value* hists = samples.back().find("hists")) {
    for (const auto& [name, v] : hists->members()) {
      (void)v;
      if (name.rfind("serve.", 0) == 0 && hist_cols.size() < 3) {
        hist_cols.push_back(name);
      }
    }
  }

  rule("trajectory (last samples)");
  std::printf("%10s", "t_ms");
  for (const std::string& g : gauge_cols) std::printf("  %18s", g.c_str());
  for (const std::string& h : hist_cols) {
    std::printf("  %22s", (h + ".p99").c_str());
  }
  std::printf("\n");
  const std::size_t begin =
      samples.size() > static_cast<std::size_t>(tail) ? samples.size() - tail : 0;
  for (std::size_t i = begin; i < samples.size(); ++i) {
    const Value& s = samples[i];
    std::printf("%10.1f", num_at(s, "t_ms"));
    const Value* gauges = s.find("gauges");
    for (const std::string& g : gauge_cols) {
      std::printf("  %18s",
                  gauges ? fmt_count(num_at(*gauges, g)).c_str() : "-");
    }
    const Value* hists = s.find("hists");
    for (const std::string& h : hist_cols) {
      const Value* hv = hists ? hists->find(h) : nullptr;
      std::printf("  %22s", hv ? fmt_ns(num_at(*hv, "p99")).c_str() : "-");
    }
    std::printf("\n");
  }

  rule("final sample");
  const Value& last = samples.back();
  if (const Value* counters = last.find("counters")) {
    std::vector<std::pair<std::string, double>> top;
    for (const auto& [name, v] : counters->members()) {
      if (v.is_number()) top.emplace_back(name, v.as_number());
    }
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::printf("counters (top %zu of %zu):\n", std::min<std::size_t>(10, top.size()),
                top.size());
    for (std::size_t i = 0; i < top.size() && i < 10; ++i) {
      std::printf("  %-40s %12s\n", top[i].first.c_str(),
                  fmt_count(top[i].second).c_str());
    }
  }
  if (const Value* gauges = last.find("gauges")) {
    std::printf("gauges:\n");
    for (const auto& [name, v] : gauges->members()) {
      if (v.is_number())
        std::printf("  %-40s %12s\n", name.c_str(), fmt_count(v.as_number()).c_str());
    }
  }
  if (const Value* hists = last.find("hists")) {
    std::printf("histograms:\n  %-32s %10s %10s %10s %10s\n", "name", "count",
                "p50", "p99", "max");
    for (const auto& [name, v] : hists->members()) {
      const bool timing = v.string_or("kind", "") == "timing_ns";
      const auto q = [&](const char* key) {
        const double x = num_at(v, key);
        return timing ? fmt_ns(x) : fmt_count(x);
      };
      std::printf("  %-32s %10s %10s %10s %10s\n", name.c_str(),
                  fmt_count(num_at(v, "count")).c_str(), q("p50").c_str(),
                  q("p99").c_str(), q("max").c_str());
    }
  }
  return 0;
}

// ---- run-report mode ------------------------------------------------------

int render_report(const Value& report) {
  std::printf("run report\n");
  for (const char* section : {"build", "env", "notes"}) {
    const Value* v = report.find(section);
    if (v == nullptr || v->members().empty()) continue;
    rule(section);
    for (const auto& [k, val] : v->members()) {
      if (val.is_string() && !val.as_string().empty()) {
        std::printf("  %-24s %s\n", k.c_str(), val.as_string().c_str());
      }
    }
  }
  if (const Value* counters = report.find("counters")) {
    std::vector<std::pair<std::string, double>> top;
    for (const auto& [name, v] : counters->members()) {
      if (v.is_number()) top.emplace_back(name, v.as_number());
    }
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    rule("counters (by total)");
    for (std::size_t i = 0; i < top.size() && i < 20; ++i) {
      std::printf("  %-44s %12s\n", top[i].first.c_str(),
                  fmt_count(top[i].second).c_str());
    }
  }
  if (const Value* gauges = report.find("gauges")) {
    if (!gauges->members().empty()) {
      rule("gauges");
      for (const auto& [name, v] : gauges->members()) {
        if (v.is_number())
          std::printf("  %-44s %12s\n", name.c_str(),
                      fmt_count(v.as_number()).c_str());
      }
    }
  }
  if (const Value* hists = report.find("histograms")) {
    rule("histograms");
    std::printf("  %-36s %10s %10s %10s %10s %10s\n", "name", "count", "p50",
                "p90", "p99", "max");
    for (const auto& [name, v] : hists->members()) {
      const bool timing = v.string_or("kind", "") == "timing_ns";
      const auto q = [&](const char* key) {
        const double x = num_at(v, key);
        return timing ? fmt_ns(x) : fmt_count(x);
      };
      std::printf("  %-36s %10s %10s %10s %10s %10s\n", name.c_str(),
                  fmt_count(num_at(v, "count")).c_str(), q("p50").c_str(),
                  q("p90").c_str(), q("p99").c_str(), q("max").c_str());
    }
  }
  if (const Value* spans = report.find("spans")) {
    std::vector<std::pair<std::string, std::pair<double, double>>> top;
    for (const auto& [name, v] : spans->members()) {
      top.emplace_back(name,
                       std::make_pair(num_at(v, "total_ms"), num_at(v, "count")));
    }
    std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
      return a.second.first > b.second.first;
    });
    if (!top.empty()) {
      rule("top spans (by total wall time)");
      std::printf("  %-44s %10s %12s\n", "name", "count", "total_ms");
      for (std::size_t i = 0; i < top.size() && i < 15; ++i) {
        std::printf("  %-44s %10s %12.3f\n", top[i].first.c_str(),
                    fmt_count(top[i].second.second).c_str(), top[i].second.first);
      }
    }
  }
  return 0;
}

// ---- trace / flight-dump mode ---------------------------------------------

int render_trace(const Value& doc) {
  if (const Value* other = doc.find("otherData")) {
    const std::string reason = other->string_or("flight_reason", "");
    if (!reason.empty()) {
      std::printf("flight dump: reason=%s, %s events, window %.3f..%.3f us\n",
                  reason.c_str(),
                  fmt_count(num_at(*other, "flight_events")).c_str(),
                  num_at(*other, "flight_window_start_us"),
                  num_at(*other, "flight_window_end_us"));
    }
  }
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "rtp_inspect: no traceEvents array\n");
    return 1;
  }
  std::map<std::string, std::size_t> by_phase;
  struct SpanAgg {
    double total_us = 0;
    std::size_t count = 0;
  };
  std::map<std::string, SpanAgg> spans;
  // Flow-chain resolution: per (name, id), which endpoint phases arrived.
  std::map<std::pair<std::string, double>, int> chains;  // bit0 s, bit1 f
  for (const Value& e : events->items()) {
    const std::string ph = e.string_or("ph", "?");
    ++by_phase[ph];
    if (ph == "X") {
      SpanAgg& a = spans[e.string_or("name", "?")];
      a.total_us += num_at(e, "dur");
      ++a.count;
    } else if (ph == "s" || ph == "t" || ph == "f") {
      int& bits = chains[{e.string_or("name", "?"), num_at(e, "id")}];
      if (ph == "s") bits |= 1;
      if (ph == "f") bits |= 2;
    }
  }
  std::printf("events:");
  for (const auto& [ph, n] : by_phase) std::printf(" %s=%zu", ph.c_str(), n);
  std::printf("\n");

  if (!chains.empty()) {
    std::map<std::string, std::pair<std::size_t, std::size_t>> per_family;
    for (const auto& [key, bits] : chains) {
      auto& [complete, total] = per_family[key.first];
      ++total;
      if (bits == 3) ++complete;
    }
    rule("flow chains (start+finish resolved)");
    for (const auto& [family, counts] : per_family) {
      std::printf("  %-36s %zu/%zu complete\n", family.c_str(), counts.first,
                  counts.second);
    }
  }

  std::vector<std::pair<std::string, SpanAgg>> top(spans.begin(), spans.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  if (!top.empty()) {
    rule("top spans (by total duration)");
    std::printf("  %-44s %10s %12s\n", "name", "count", "total");
    for (std::size_t i = 0; i < top.size() && i < 15; ++i) {
      std::printf("  %-44s %10s %12s\n", top[i].first.c_str(),
                  fmt_count(static_cast<double>(top[i].second.count)).c_str(),
                  fmt_ns(top[i].second.total_us * 1e3).c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  int tail = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tail") == 0 && i + 1 < argc) {
      tail = std::max(1, std::atoi(argv[++i]));
    } else if (argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: rtp_inspect <file> [--tail N]\n");
      return 1;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: rtp_inspect <file> [--tail N]\n");
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "rtp_inspect: cannot open %s\n", path);
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  // JSONL stats files: every line is its own document.
  if (text.find("\"rtp-stats-v1\"") != std::string::npos &&
      text.find("\"traceEvents\"") == std::string::npos) {
    std::vector<Value> samples;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::string error;
      std::optional<Value> v = rtp::core::json::parse(line, &error);
      if (!v.has_value()) {
        std::fprintf(stderr, "rtp_inspect: bad stats line: %s\n", error.c_str());
        return 1;
      }
      samples.push_back(*std::move(v));
    }
    if (samples.empty()) {
      std::fprintf(stderr, "rtp_inspect: empty stats file\n");
      return 1;
    }
    return render_stats(samples, tail);
  }

  std::string error;
  std::optional<Value> doc = rtp::core::json::parse(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "rtp_inspect: %s: %s\n", path, error.c_str());
    return 1;
  }
  if (doc->find("traceEvents") != nullptr) return render_trace(*doc);
  if (doc->find("counters") != nullptr) return render_report(*doc);
  std::fprintf(stderr,
               "rtp_inspect: %s: unrecognized document (expected stats jsonl, "
               "run report, or chrome-tracing JSON)\n",
               path);
  return 1;
}
