# Empty compiler generated dependencies file for mask_visualizer.
# This may be replaced when dependencies are built.
