file(REMOVE_RECURSE
  "CMakeFiles/mask_visualizer.dir/mask_visualizer.cpp.o"
  "CMakeFiles/mask_visualizer.dir/mask_visualizer.cpp.o.d"
  "mask_visualizer"
  "mask_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mask_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
