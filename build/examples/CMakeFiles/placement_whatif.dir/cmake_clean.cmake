file(REMOVE_RECURSE
  "CMakeFiles/placement_whatif.dir/placement_whatif.cpp.o"
  "CMakeFiles/placement_whatif.dir/placement_whatif.cpp.o.d"
  "placement_whatif"
  "placement_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
