# Empty compiler generated dependencies file for placement_whatif.
# This may be replaced when dependencies are built.
