file(REMOVE_RECURSE
  "CMakeFiles/rtp_gen.dir/benchmarks.cpp.o"
  "CMakeFiles/rtp_gen.dir/benchmarks.cpp.o.d"
  "CMakeFiles/rtp_gen.dir/circuit_generator.cpp.o"
  "CMakeFiles/rtp_gen.dir/circuit_generator.cpp.o.d"
  "librtp_gen.a"
  "librtp_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
