# Empty compiler generated dependencies file for rtp_gen.
# This may be replaced when dependencies are built.
