
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/benchmarks.cpp" "src/gen/CMakeFiles/rtp_gen.dir/benchmarks.cpp.o" "gcc" "src/gen/CMakeFiles/rtp_gen.dir/benchmarks.cpp.o.d"
  "/root/repo/src/gen/circuit_generator.cpp" "src/gen/CMakeFiles/rtp_gen.dir/circuit_generator.cpp.o" "gcc" "src/gen/CMakeFiles/rtp_gen.dir/circuit_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/rtp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
