file(REMOVE_RECURSE
  "librtp_gen.a"
)
