# Empty dependencies file for rtp_timing.
# This may be replaced when dependencies are built.
