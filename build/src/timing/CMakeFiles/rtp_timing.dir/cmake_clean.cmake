file(REMOVE_RECURSE
  "CMakeFiles/rtp_timing.dir/longest_path.cpp.o"
  "CMakeFiles/rtp_timing.dir/longest_path.cpp.o.d"
  "CMakeFiles/rtp_timing.dir/timing_graph.cpp.o"
  "CMakeFiles/rtp_timing.dir/timing_graph.cpp.o.d"
  "librtp_timing.a"
  "librtp_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
