file(REMOVE_RECURSE
  "librtp_timing.a"
)
