file(REMOVE_RECURSE
  "librtp_baselines.a"
)
