file(REMOVE_RECURSE
  "CMakeFiles/rtp_baselines.dir/arc_features.cpp.o"
  "CMakeFiles/rtp_baselines.dir/arc_features.cpp.o.d"
  "CMakeFiles/rtp_baselines.dir/guo_model.cpp.o"
  "CMakeFiles/rtp_baselines.dir/guo_model.cpp.o.d"
  "CMakeFiles/rtp_baselines.dir/local_delay_model.cpp.o"
  "CMakeFiles/rtp_baselines.dir/local_delay_model.cpp.o.d"
  "CMakeFiles/rtp_baselines.dir/pert.cpp.o"
  "CMakeFiles/rtp_baselines.dir/pert.cpp.o.d"
  "librtp_baselines.a"
  "librtp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
