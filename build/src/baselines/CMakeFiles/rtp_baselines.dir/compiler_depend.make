# Empty compiler generated dependencies file for rtp_baselines.
# This may be replaced when dependencies are built.
