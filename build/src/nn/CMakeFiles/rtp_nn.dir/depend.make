# Empty dependencies file for rtp_nn.
# This may be replaced when dependencies are built.
