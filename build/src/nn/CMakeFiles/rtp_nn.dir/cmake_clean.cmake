file(REMOVE_RECURSE
  "CMakeFiles/rtp_nn.dir/adam.cpp.o"
  "CMakeFiles/rtp_nn.dir/adam.cpp.o.d"
  "CMakeFiles/rtp_nn.dir/conv.cpp.o"
  "CMakeFiles/rtp_nn.dir/conv.cpp.o.d"
  "CMakeFiles/rtp_nn.dir/layers.cpp.o"
  "CMakeFiles/rtp_nn.dir/layers.cpp.o.d"
  "CMakeFiles/rtp_nn.dir/mlp.cpp.o"
  "CMakeFiles/rtp_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/rtp_nn.dir/serialize.cpp.o"
  "CMakeFiles/rtp_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/rtp_nn.dir/tensor.cpp.o"
  "CMakeFiles/rtp_nn.dir/tensor.cpp.o.d"
  "librtp_nn.a"
  "librtp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
