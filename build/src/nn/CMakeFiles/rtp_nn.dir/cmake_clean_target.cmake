file(REMOVE_RECURSE
  "librtp_nn.a"
)
