# Empty dependencies file for rtp_sta.
# This may be replaced when dependencies are built.
