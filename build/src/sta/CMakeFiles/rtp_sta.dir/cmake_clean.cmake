file(REMOVE_RECURSE
  "CMakeFiles/rtp_sta.dir/delay_model.cpp.o"
  "CMakeFiles/rtp_sta.dir/delay_model.cpp.o.d"
  "CMakeFiles/rtp_sta.dir/sta.cpp.o"
  "CMakeFiles/rtp_sta.dir/sta.cpp.o.d"
  "librtp_sta.a"
  "librtp_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
