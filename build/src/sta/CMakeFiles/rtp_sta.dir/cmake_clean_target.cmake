file(REMOVE_RECURSE
  "librtp_sta.a"
)
