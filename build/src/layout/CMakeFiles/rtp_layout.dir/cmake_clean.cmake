file(REMOVE_RECURSE
  "CMakeFiles/rtp_layout.dir/feature_maps.cpp.o"
  "CMakeFiles/rtp_layout.dir/feature_maps.cpp.o.d"
  "CMakeFiles/rtp_layout.dir/placement.cpp.o"
  "CMakeFiles/rtp_layout.dir/placement.cpp.o.d"
  "librtp_layout.a"
  "librtp_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
