# Empty compiler generated dependencies file for rtp_layout.
# This may be replaced when dependencies are built.
