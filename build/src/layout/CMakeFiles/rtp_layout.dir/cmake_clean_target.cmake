file(REMOVE_RECURSE
  "librtp_layout.a"
)
