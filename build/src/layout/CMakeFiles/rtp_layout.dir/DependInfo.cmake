
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/feature_maps.cpp" "src/layout/CMakeFiles/rtp_layout.dir/feature_maps.cpp.o" "gcc" "src/layout/CMakeFiles/rtp_layout.dir/feature_maps.cpp.o.d"
  "/root/repo/src/layout/placement.cpp" "src/layout/CMakeFiles/rtp_layout.dir/placement.cpp.o" "gcc" "src/layout/CMakeFiles/rtp_layout.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/rtp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rtp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
