file(REMOVE_RECURSE
  "CMakeFiles/rtp_eval.dir/experiments.cpp.o"
  "CMakeFiles/rtp_eval.dir/experiments.cpp.o.d"
  "CMakeFiles/rtp_eval.dir/metrics.cpp.o"
  "CMakeFiles/rtp_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/rtp_eval.dir/table.cpp.o"
  "CMakeFiles/rtp_eval.dir/table.cpp.o.d"
  "librtp_eval.a"
  "librtp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
