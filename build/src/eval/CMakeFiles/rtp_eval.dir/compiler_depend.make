# Empty compiler generated dependencies file for rtp_eval.
# This may be replaced when dependencies are built.
