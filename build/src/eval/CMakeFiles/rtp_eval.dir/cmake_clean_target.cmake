file(REMOVE_RECURSE
  "librtp_eval.a"
)
