file(REMOVE_RECURSE
  "librtp_flow.a"
)
