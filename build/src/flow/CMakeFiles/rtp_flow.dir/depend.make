# Empty dependencies file for rtp_flow.
# This may be replaced when dependencies are built.
