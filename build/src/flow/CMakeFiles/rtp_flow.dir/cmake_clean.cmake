file(REMOVE_RECURSE
  "CMakeFiles/rtp_flow.dir/dataset_flow.cpp.o"
  "CMakeFiles/rtp_flow.dir/dataset_flow.cpp.o.d"
  "librtp_flow.a"
  "librtp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
