file(REMOVE_RECURSE
  "CMakeFiles/rtp_route.dir/global_router.cpp.o"
  "CMakeFiles/rtp_route.dir/global_router.cpp.o.d"
  "librtp_route.a"
  "librtp_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
