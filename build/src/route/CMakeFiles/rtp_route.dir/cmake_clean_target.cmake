file(REMOVE_RECURSE
  "librtp_route.a"
)
