# Empty compiler generated dependencies file for rtp_route.
# This may be replaced when dependencies are built.
