# Empty dependencies file for rtp_place.
# This may be replaced when dependencies are built.
