file(REMOVE_RECURSE
  "librtp_place.a"
)
