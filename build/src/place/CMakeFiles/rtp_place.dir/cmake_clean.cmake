file(REMOVE_RECURSE
  "CMakeFiles/rtp_place.dir/placer.cpp.o"
  "CMakeFiles/rtp_place.dir/placer.cpp.o.d"
  "librtp_place.a"
  "librtp_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
