file(REMOVE_RECURSE
  "librtp_core.a"
)
