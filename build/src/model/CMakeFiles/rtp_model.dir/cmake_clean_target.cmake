file(REMOVE_RECURSE
  "librtp_model.a"
)
