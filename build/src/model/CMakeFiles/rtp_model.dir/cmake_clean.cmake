file(REMOVE_RECURSE
  "CMakeFiles/rtp_model.dir/features.cpp.o"
  "CMakeFiles/rtp_model.dir/features.cpp.o.d"
  "CMakeFiles/rtp_model.dir/fusion.cpp.o"
  "CMakeFiles/rtp_model.dir/fusion.cpp.o.d"
  "CMakeFiles/rtp_model.dir/gnn.cpp.o"
  "CMakeFiles/rtp_model.dir/gnn.cpp.o.d"
  "CMakeFiles/rtp_model.dir/layout_encoder.cpp.o"
  "CMakeFiles/rtp_model.dir/layout_encoder.cpp.o.d"
  "CMakeFiles/rtp_model.dir/trainer.cpp.o"
  "CMakeFiles/rtp_model.dir/trainer.cpp.o.d"
  "librtp_model.a"
  "librtp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
