# Empty dependencies file for rtp_model.
# This may be replaced when dependencies are built.
