file(REMOVE_RECURSE
  "CMakeFiles/rtp_netlist.dir/library.cpp.o"
  "CMakeFiles/rtp_netlist.dir/library.cpp.o.d"
  "CMakeFiles/rtp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/rtp_netlist.dir/netlist.cpp.o.d"
  "librtp_netlist.a"
  "librtp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
