file(REMOVE_RECURSE
  "librtp_netlist.a"
)
