# Empty compiler generated dependencies file for rtp_netlist.
# This may be replaced when dependencies are built.
