# Empty compiler generated dependencies file for rtp_opt.
# This may be replaced when dependencies are built.
