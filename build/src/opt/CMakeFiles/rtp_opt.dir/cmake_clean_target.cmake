file(REMOVE_RECURSE
  "librtp_opt.a"
)
