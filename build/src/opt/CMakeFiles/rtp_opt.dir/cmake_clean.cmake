file(REMOVE_RECURSE
  "CMakeFiles/rtp_opt.dir/optimizer.cpp.o"
  "CMakeFiles/rtp_opt.dir/optimizer.cpp.o.d"
  "librtp_opt.a"
  "librtp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
