# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/timing_graph_test[1]_include.cmake")
include("/root/repo/build/tests/sta_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/place_test[1]_include.cmake")
include("/root/repo/build/tests/route_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
