
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/place_test.cpp" "tests/CMakeFiles/place_test.dir/place_test.cpp.o" "gcc" "tests/CMakeFiles/place_test.dir/place_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/rtp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rtp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rtp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/rtp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/rtp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/rtp_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/rtp_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/rtp_place.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/rtp_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/rtp_route.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/rtp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/rtp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rtp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
