#!/bin/sh
# Final verification runs (DESIGN.md / EXPERIMENTS.md reproduction recipe).
set -x
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do [ -x "$b" ] && [ -f "$b" ] && "$b"; done 2>&1 | tee /root/repo/bench_output.txt
